"""Prefetch/resume overlap: the vCPU runs while the WS streams in.

REAP serializes the whole working-set fetch + install ahead of resume
(§5.2.2); Tan et al. observe that most of that window is I/O the guest
does not yet need.  The ``overlap`` policy resumes the vCPU right after
the (tiny) trace read and streams the WS file in fixed-size segments in
the background.  A demand fault on a page whose segment has not arrived
*blocks on the in-flight transfer* instead of issuing its own read;
faults outside the recorded set take the normal userfaultfd path.

The background stream is a first-class simulation process: an interrupt
mid-stream (worker crash, teardown) unwinds it through ``finally``,
releasing every blocked waiter so nothing leaks -- the regression test
in ``tests/test_policies.py`` pins this.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.context import LatencyBreakdown
from repro.core.files import ReapArtifacts
from repro.core.policies import WsFilePolicy
from repro.memory.guest import ContentMode
from repro.memory.working_set import contiguous_runs
from repro.obs import tracer as obs_tracer
from repro.sim.engine import Event, Interrupt, Process
from repro.sim.units import PAGE_SIZE
from repro.vm.host import WorkerHost
from repro.vm.microvm import MicroVM
from repro.vm.snapshot import Snapshot
from repro.vm.vcpu import FaultHandler


class OverlapPolicy(WsFilePolicy):
    """Resume immediately; stream the WS concurrently, segment by segment."""

    name = "overlap"
    direct_io = True

    def __init__(self, host: WorkerHost, snapshot: Snapshot,
                 breakdown: LatencyBreakdown,
                 artifacts: Optional[ReapArtifacts] = None,
                 segment_pages: int = 64) -> None:
        super().__init__(host, snapshot, breakdown, artifacts=artifacts)
        if segment_pages < 1:
            raise ValueError(f"segment_pages must be >= 1: {segment_pages}")
        self.segment_pages = segment_pages
        #: Trace process name (the constructing layer overrides it).
        self.obs_proc = "worker0"
        #: WS pages whose segment has not been installed yet.
        self._remaining: set[int] = set()
        #: Per-page events of faults blocked on the in-flight transfer.
        self._waiters: dict[int, Event] = {}
        self._stream_proc: Optional[Process] = None
        self._done: Optional[Event] = None

    def prepare(self, vm: MicroVM) -> Generator[Event, Any, None]:
        env = self.host.env
        started = env.now
        trace = yield from self._load_trace()
        # Only the trace read is on the critical path; the WS transfer
        # itself overlaps execution (accounted in overlap_stream_us).
        self.breakdown.fetch_ws_us = env.now - started
        pages = list(trace.pages)
        self._remaining = set(pages)
        self._done = env.event()
        self._stream_proc = env.process(
            self._stream(vm, pages), name=f"overlap-stream:{vm.name}")

    def _stream(self, vm: MicroVM,
                pages: list[int]) -> Generator[Event, Any, None]:
        env = self.host.env
        ws = self.artifacts.working_set
        started = env.now
        full_content = vm.memory.content_mode is ContentMode.FULL
        tracer = obs_tracer.ACTIVE
        span = None
        if tracer is not None:
            span = tracer.begin("prefetch_overlap", started,
                                lane=f"overlap:{vm.name}",
                                proc=self.obs_proc, cat="policy",
                                args={"pages": len(pages),
                                      "segment_pages": self.segment_pages})
        installed = 0
        try:
            for start in range(0, len(pages), self.segment_pages):
                segment = pages[start:start + self.segment_pages]
                nbytes = len(segment) * PAGE_SIZE
                yield from self.host.page_cache.read(
                    ws.file, start * PAGE_SIZE, nbytes,
                    direct=self.direct_io)
                install_us = self.host.install_batch_us(
                    len(contiguous_runs(segment)), nbytes)
                yield env.timeout(install_us)
                if full_content:
                    data = [ws.page_content(start + slot)
                            for slot in range(len(segment))]
                else:
                    data = None
                self.uffd.copy_batch(segment, data)
                installed += len(segment)
                self._arrived(segment)
        except Interrupt:
            # Torn down mid-stream (crash, eviction): release everyone
            # blocked on the transfer; the fall-through below still runs.
            pass
        finally:
            self._release_all()
            self.breakdown.prefetched_pages = installed
            self.breakdown.extra["overlap_stream_us"] = env.now - started
            if not self._done.triggered:
                self._done.succeed()
            if tracer is not None:
                tracer.end(span, env.now, args={"installed": installed})

    def _arrived(self, segment: list[int]) -> None:
        remaining = self._remaining
        waiters = self._waiters
        for page in segment:
            remaining.discard(page)
            waiter = waiters.pop(page, None)
            if waiter is not None:
                waiter.succeed()

    def _release_all(self) -> None:
        """Wake every blocked fault; never-streamed pages demand-fault."""
        self._remaining.clear()
        waiters = self._waiters
        self._waiters = {}
        for waiter in waiters.values():
            waiter.succeed()

    def fault_handler(self, vm: MicroVM) -> FaultHandler:
        if self.uffd is None:
            raise RuntimeError(f"{self.name}: attach() not called")
        uffd = self.uffd
        memory = vm.memory
        env = self.host.env
        breakdown = self.breakdown
        remaining = self._remaining
        waiters = self._waiters

        def handler(page: int) -> Generator[Event, Any, None]:
            if page in remaining:
                # Blocked on the in-flight transfer, not a fresh read.
                breakdown.extra["overlap_blocked_faults"] = (
                    breakdown.extra.get("overlap_blocked_faults", 0) + 1)
                waiter = waiters.get(page)
                if waiter is None:
                    waiter = env.event()
                    waiters[page] = waiter
                yield waiter
                if memory.is_present(page):
                    return
                # Stream aborted before this page: fall through.
            wake = uffd.raise_fault(page)
            yield wake

        return handler

    def finish(self, vm: MicroVM) -> Generator[Event, Any, None]:
        # The invocation may outrun the tail of the stream (the last
        # segments carry pages it never touched); drain it before the
        # monitor stops so the instance parks with no transfer in flight.
        if self._stream_proc is not None and self._stream_proc.is_alive:
            yield self._done
        result = yield from super().finish(vm)
        return result

    def on_teardown(self) -> None:
        proc = self._stream_proc
        if proc is not None and proc.is_alive:
            proc.interrupt("teardown")
