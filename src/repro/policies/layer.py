"""The pluggable cold-start policy layer (scheme registry + wiring).

An :class:`~repro.orchestrator.orchestrator.Orchestrator` built with
``policy_params`` owns one :class:`ColdStartPolicyLayer`; the layer
intercepts automatic restore-mode selection, builds the scheme-specific
policies, and feeds completed invocations back into the scheme's state
(prediction history, prewarm histograms).  Without ``policy_params``
(the default everywhere) the orchestrator never touches this module --
the golden-digest tests pin that the layer is zero-cost when off.

Schemes, all layered over the REAP record/prefetch machinery:

==============  =========================================================
``vanilla``     No layer behavior (baseline; comparison convenience)
``reap``        No layer behavior (full REAP, §5.2)
``overlap``     Prefetch/resume overlap (:mod:`repro.policies.overlap`)
``predict``     Cross-generation WS prediction (:mod:`repro.policies.predict`)
``shared``      Co-resident chunk sharing (:mod:`repro.policies.shared`)
``prewarm``     Periodicity-driven speculation (:mod:`repro.policies.prewarm`)
==============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.context import LatencyBreakdown
from repro.core.policies import RestorePolicy
from repro.policies.overlap import OverlapPolicy
from repro.policies.predict import PredictPolicy
from repro.policies.prewarm import PrewarmManager
from repro.policies.shared import SharedPolicy, SharedResidency
from repro.vm.snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.orchestrator.orchestrator import Orchestrator

#: Every scheme the layer accepts (the floor_study zoo).
SCHEMES: tuple[str, ...] = ("vanilla", "reap", "overlap", "predict",
                            "shared", "prewarm")

#: Schemes that replace the auto-selected prefetch policy.
_COLD_PATH_SCHEMES = ("overlap", "predict", "shared")

#: Recorded/demanded working-set generations kept per function.
WS_HISTORY_LIMIT = 8


@dataclass(frozen=True)
class PolicyLayerParameters:
    """Cell-param-friendly configuration of the policy layer."""

    #: Which scheme this worker runs (see :data:`SCHEMES`).
    scheme: str = "reap"
    #: Warm-pool footprint cap enforced on speculative instances.
    memory_budget_mb: float = 1024.0
    #: Pages per background-stream segment (``overlap``).
    overlap_segment_pages: int = 64
    #: Prior generations unioned into the prediction (``predict``).
    predict_window: int = 3
    #: How long before the predicted arrival a prewarm fires, seconds.
    prewarm_margin_s: float = 2.0
    #: Gap observations required before predicting (``prewarm``).
    prewarm_min_samples: int = 3
    #: Fraction of gaps the dominant bucket must hold (``prewarm``).
    prewarm_top_fraction: float = 0.5
    #: Gap observations retained per function (``prewarm``).
    prewarm_history: int = 64

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            known = ", ".join(SCHEMES)
            raise ValueError(
                f"unknown policy scheme {self.scheme!r}; known: {known}")

    def to_params(self) -> dict[str, object]:
        """JSON-serializable form for experiment cell params."""
        return {"scheme": self.scheme,
                "memory_budget_mb": self.memory_budget_mb}


class ColdStartPolicyLayer:
    """Scheme dispatch and feedback loops of one worker's orchestrator."""

    def __init__(self, orchestrator: "Orchestrator",
                 params: PolicyLayerParameters) -> None:
        self.orchestrator = orchestrator
        self.params = params
        self.residency: Optional[SharedResidency] = (
            SharedResidency() if params.scheme == "shared" else None)
        self.prewarm: Optional[PrewarmManager] = (
            PrewarmManager(orchestrator, params)
            if params.scheme == "prewarm" else None)

    # -- mode selection ---------------------------------------------------

    def select_mode(self, name: str, selected: str) -> str:
        """Map the auto-selected mode to this layer's scheme.

        Only the prefetch decision is overridden: ``record`` (no
        artifacts yet) and ``vanilla`` (fallback) pass through, so the
        §7.2 state machine keeps working underneath every scheme.
        """
        if self.params.scheme in _COLD_PATH_SCHEMES and selected == "reap":
            return self.params.scheme
        return selected

    # -- policy construction ----------------------------------------------

    def policy_for(self, snapshot: Snapshot, breakdown: LatencyBreakdown,
                   mode: str) -> RestorePolicy:
        """Build the policy for ``mode``; base modes delegate to REAP."""
        reap = self.orchestrator.reap
        if mode not in _COLD_PATH_SCHEMES:
            return reap.policy_for(snapshot, breakdown, mode)
        state = reap.state_for(snapshot.function_name)
        artifacts = state.artifacts
        if artifacts is None:
            raise RuntimeError(
                f"{snapshot.function_name}: no recorded artifacts for "
                f"policy {mode!r}")
        policy: RestorePolicy
        if mode == "overlap":
            policy = OverlapPolicy(
                reap.host, snapshot, breakdown, artifacts=artifacts,
                segment_pages=self.params.overlap_segment_pages)
        elif mode == "predict":
            policy = PredictPolicy(
                reap.host, snapshot, breakdown, artifacts=artifacts,
                predicted_extra=self._predicted_extra(state, artifacts))
        else:
            policy = SharedPolicy(
                reap.host, snapshot, breakdown, artifacts=artifacts,
                residency=self.residency)
        policy.obs_proc = self.orchestrator.obs_proc
        return policy

    def _predicted_extra(self, state, artifacts) -> tuple[int, ...]:
        window = state.ws_history[-self.params.predict_window:]
        if not window:
            return ()
        union: set[int] = set().union(*window)
        return tuple(sorted(union - set(artifacts.page_set)))

    # -- feedback ---------------------------------------------------------

    def observe_complete(self, name: str, policy: RestorePolicy) -> None:
        """Fold one finished cold invocation into scheme state."""
        if policy.name != "predict":
            return
        demanded = getattr(policy, "demanded_pages", None)
        if demanded:
            state = self.orchestrator.reap.state_for(name)
            state.ws_history.append(frozenset(demanded))
            del state.ws_history[:-WS_HISTORY_LIMIT]

    def observe_invocation(self, name: str, arrived_at: float) -> None:
        """Feed one arrival (warm or cold) to the prewarm histograms."""
        if self.prewarm is not None:
            self.prewarm.observe(name, arrived_at)

    def stop(self) -> None:
        """Cancel background work (prewarm timers); end-of-cell drain."""
        if self.prewarm is not None:
            self.prewarm.stop()
