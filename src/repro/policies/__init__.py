"""Pluggable cold-start policies beyond vanilla/REAP (the policy zoo).

This package implements the ``floor_study`` schemes -- prefetch/resume
overlap, cross-generation working-set prediction, co-resident chunk
sharing, and periodicity-driven prewarm -- as
:class:`~repro.core.policies.RestorePolicy` subclasses plus a
per-worker :class:`ColdStartPolicyLayer` that threads them through the
orchestrator.  Importing the package registers the new policies in
:data:`repro.core.policies.POLICIES`, so forced modes
(``invoke(mode="overlap")``) work too; :func:`~repro.core.policies.make_policy`
performs that import lazily on the first unknown name, keeping the
default path import-free.
"""

from __future__ import annotations

from repro.core.policies import POLICIES
from repro.policies.layer import (
    SCHEMES,
    ColdStartPolicyLayer,
    PolicyLayerParameters,
)
from repro.policies.overlap import OverlapPolicy
from repro.policies.predict import PredictPolicy
from repro.policies.prewarm import PrewarmManager
from repro.policies.shared import SharedPolicy, SharedResidency

__all__ = [
    "SCHEMES",
    "ColdStartPolicyLayer",
    "OverlapPolicy",
    "PolicyLayerParameters",
    "PredictPolicy",
    "PrewarmManager",
    "SharedPolicy",
    "SharedResidency",
]

# Register the zoo for by-name construction (forced benchmark modes).
for _policy in (OverlapPolicy, PredictPolicy, SharedPolicy):
    POLICIES.setdefault(_policy.name, _policy)
del _policy
