"""Page-cache sharing of deduped chunks across co-resident VMs.

The Fig. 5 characterization showed that snapshot working sets are
nearly identical across invocations of a function (and share zero
chunks across functions).  The ``shared`` policy exploits that at
restore time: a per-worker :class:`SharedResidency` tracks which
16-byte content digests (:mod:`repro.snapstore.chunks`) are already
resident for *live* instances, and a restoring VM skips the device
fetch for every chunk some co-resident VM already holds -- a chunk
resident for VM A is a page-cache hit for VM B.  Install (ioctl +
memcpy) cost is still paid for every page; only the I/O is elided.

Residency is refcounted through :class:`~repro.snapstore.chunks.ChunkIndex`
object accounting: each live instance registers its working set as an
object on prepare and releases it on teardown, so a chunk stays "hot"
exactly while some instance holds it and eviction of a shared chunk
only charges the last releaser (the property tests in
``tests/test_policies.py`` pin both).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.context import LatencyBreakdown
from repro.core.files import ReapArtifacts
from repro.core.policies import ReapPolicy
from repro.memory.guest import ContentMode
from repro.obs import tracer as obs_tracer
from repro.sim.engine import Event
from repro.sim.units import PAGE_SIZE
from repro.snapstore.chunks import (
    ZERO_PAGE_DIGEST,
    ChunkIndex,
    snapshot_page_digest,
)
from repro.vm.host import WorkerHost
from repro.vm.microvm import MicroVM
from repro.vm.snapshot import Snapshot


class SharedResidency:
    """Refcounted chunk residency of one worker's live instances."""

    def __init__(self) -> None:
        self.index = ChunkIndex()
        #: Pages whose fetch was elided because the chunk was resident.
        self.shared_hits = 0
        #: Instances currently registered.
        self.live_objects = 0

    def resident_pages(self, digests: list[bytes]) -> int:
        """How many of ``digests`` are already resident (per-page count).

        Counts chunks held by live objects plus intra-object duplicates
        after their first occurrence (one fetch warms every copy).
        """
        contains = self.index.contains
        seen: set[bytes] = set()
        shared = 0
        for digest in digests:
            if contains(digest) or digest in seen:
                shared += 1
            else:
                seen.add(digest)
        return shared

    def acquire(self, object_id: str, digests: list[bytes]) -> int:
        """Register a live instance's chunks; returns its shared pages."""
        shared = self.resident_pages(digests)
        self.index.add_object(object_id, digests)
        self.shared_hits += shared
        self.live_objects += 1
        return shared

    def release(self, object_id: str) -> int:
        """Drop a released instance; returns stored bytes reclaimed."""
        if not self.index.has_object(object_id):
            return 0
        self.live_objects -= 1
        return self.index.release_object(object_id)

    def shared_fraction(self, base_id: str, other_id: str) -> float:
        """Content overlap between two live instances (Fig. 5 metric)."""
        return self.index.shared_fraction(base_id, other_id)


class SharedPolicy(ReapPolicy):
    """REAP restore that skips fetching chunks co-resident VMs hold."""

    name = "shared"

    def __init__(self, host: WorkerHost, snapshot: Snapshot,
                 breakdown: LatencyBreakdown,
                 artifacts: Optional[ReapArtifacts] = None,
                 residency: Optional[SharedResidency] = None) -> None:
        super().__init__(host, snapshot, breakdown, artifacts=artifacts)
        self.residency = residency
        self.obs_proc = "worker0"
        self._object_id: Optional[str] = None

    def prepare(self, vm: MicroVM) -> Generator[Event, Any, None]:
        residency = self.residency
        if residency is None:
            # No sharing context (forced-mode benchmarks): plain REAP.
            yield from super().prepare(vm)
            return
        env = self.host.env
        artifacts = self.artifacts
        ws = artifacts.working_set
        started = env.now
        trace = yield from self._load_trace()
        pages = list(trace.pages)
        memory_file = vm.memory.backing_file
        function = self.snapshot.function_name
        epoch = self.snapshot.epoch
        digests = [snapshot_page_digest(function, epoch, page)
                   if memory_file.has_block(page) else ZERO_PAGE_DIGEST
                   for page in pages]
        shared = residency.resident_pages(digests)
        # Fetch only the cold remainder; shared chunks are page-cache
        # hits for free (the co-resident holder paid the device read).
        fetch_bytes = (len(pages) - shared) * PAGE_SIZE
        if fetch_bytes:
            yield from self.host.page_cache.read(
                ws.file, 0, fetch_bytes, direct=self.direct_io)
        self.breakdown.fetch_ws_us = env.now - started
        started = env.now
        yield env.timeout(self.host.install_batch_us(
            ws.run_count, ws.payload_bytes))
        if vm.memory.content_mode is ContentMode.FULL:
            data = [ws.page_content(slot) for slot in range(len(pages))]
        else:
            data = None
        self.uffd.copy_batch(pages, data)
        self.breakdown.install_ws_us = env.now - started
        self.breakdown.prefetched_pages = len(pages)
        self.breakdown.extra["shared_hit_pages"] = shared
        tracer = obs_tracer.ACTIVE
        if tracer is not None:
            tracer.instant("shared_hit", env.now,
                           lane=f"shared:{vm.name}", proc=self.obs_proc,
                           cat="policy",
                           args={"function": function, "pages": len(pages),
                                 "shared": shared})
        self._object_id = f"shared/{vm.name}-p{self.policy_id}"
        residency.acquire(self._object_id, digests)

    def on_teardown(self) -> None:
        if self.residency is not None and self._object_id is not None:
            self.residency.release(self._object_id)
            self._object_id = None
