"""Periodicity-driven speculative prewarm (hybrid-histogram style).

The Azure trace analysis behind the hybrid-histogram keep-alive policy
(Shahrad et al.; the trace synthesizer's ``periodic`` class) shows a
large population of functions with strongly periodic inter-arrival
times.  The ``prewarm`` scheme layers speculation over the keep-alive
defaults: per function, a log2-bucketed histogram of observed gaps is
maintained; once one bucket clearly dominates, the next arrival is
predicted as the median gap of that bucket and an instance is restored
(through the regular REAP path, connection phase included) shortly
*before* the predicted arrival -- which then hits warm.

Speculative instances respect the scheme's memory budget: a prewarm
that would push the worker's warm-pool footprint past
``memory_budget_mb`` is skipped, keeping the floor study's
equal-memory-budget comparison honest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.obs import tracer as obs_tracer
from repro.sim.engine import Event, Interrupt, Process
from repro.sim.units import MIB, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.orchestrator.orchestrator import Orchestrator
    from repro.policies.layer import PolicyLayerParameters


class PrewarmManager:
    """Per-function gap histograms driving speculative restores."""

    def __init__(self, orchestrator: "Orchestrator",
                 params: "PolicyLayerParameters") -> None:
        self.orchestrator = orchestrator
        self.params = params
        self._last_arrival: dict[str, float] = {}
        self._gaps: dict[str, list[float]] = {}
        self._timers: dict[str, Process] = {}
        #: Speculative restores actually performed.
        self.prewarms = 0
        #: Predictions skipped for budget or an already-warm pool.
        self.skipped = 0

    # -- observation ------------------------------------------------------

    def observe(self, name: str, arrived_at: float) -> None:
        """Feed one arrival; may (re)schedule the function's timer."""
        last = self._last_arrival.get(name)
        self._last_arrival[name] = arrived_at
        if last is None:
            return
        gap = arrived_at - last
        if gap <= 0.0:
            return
        gaps = self._gaps.setdefault(name, [])
        gaps.append(gap)
        del gaps[:-self.params.prewarm_history]
        predicted = self._predict_gap(gaps)
        if predicted is None:
            return
        self._schedule(name, arrived_at + predicted)

    def _predict_gap(self, gaps: list[float]) -> Optional[float]:
        """Median gap of the dominant log2 bucket, if one dominates."""
        if len(gaps) < self.params.prewarm_min_samples:
            return None
        buckets: dict[int, list[float]] = {}
        for gap in gaps:
            buckets.setdefault(int(gap).bit_length(), []).append(gap)
        # Deterministic tie-break: the smallest dominant bucket wins.
        top_key = min(buckets,
                      key=lambda key: (-len(buckets[key]), key))
        top = buckets[top_key]
        if len(top) < self.params.prewarm_top_fraction * len(gaps):
            return None
        ordered = sorted(top)
        return ordered[len(ordered) // 2]

    # -- timers -----------------------------------------------------------

    def _schedule(self, name: str, predicted_arrival: float) -> None:
        fire_at = predicted_arrival - self.params.prewarm_margin_s * SEC
        env = self.orchestrator.env
        if fire_at <= env.now:
            return
        old = self._timers.get(name)
        if old is not None and old.is_alive:
            old.interrupt("rescheduled")
        self._timers[name] = env.process(
            self._timer(name, fire_at), name=f"prewarm-timer:{name}")

    def _timer(self, name: str,
               fire_at: float) -> Generator[Event, None, None]:
        env = self.orchestrator.env
        try:
            yield env.timeout(fire_at - env.now)
        except Interrupt:
            return
        orchestrator = self.orchestrator
        if not orchestrator.has_function(name):
            return
        if orchestrator.function(name).warm:
            self.skipped += 1
            return
        if not self._budget_allows(name):
            self.skipped += 1
            tracer = obs_tracer.ACTIVE
            if tracer is not None:
                tracer.instant("prewarm_skipped", env.now, lane="prewarm",
                               proc=orchestrator.obs_proc, cat="policy",
                               args={"function": name,
                                     "reason": "memory_budget"})
            return
        try:
            warmed = yield from orchestrator.prewarm(name)
        except Interrupt:
            # Torn down mid-restore (cell drain, crash): the prewarm
            # path already released the instance and its pins.
            return
        if warmed:
            self.prewarms += 1

    def _budget_allows(self, name: str) -> bool:
        budget_bytes = self.params.memory_budget_mb * MIB
        orchestrator = self.orchestrator
        used = 0
        for deployed in orchestrator.deployed_names():
            entry = orchestrator.function(deployed)
            used += len(entry.warm) * entry.profile.boot_footprint_bytes
        incoming = orchestrator.function(name).profile.boot_footprint_bytes
        return used + incoming <= budget_bytes

    def stop(self) -> None:
        """Interrupt every live timer (end-of-cell drain)."""
        for timer in self._timers.values():
            if timer.is_alive:
                timer.interrupt("stopped")
        self._timers.clear()
