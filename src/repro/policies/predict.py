"""Cross-generation working-set prediction on top of REAP.

REAP prefetches exactly the first recorded working set, so every page a
later invocation touches outside it demand-faults (§7.1's unique
pages).  The ``predict`` policy augments the install with the union of
the working sets *previous generations* actually demanded, harvested
from :class:`repro.core.manager.ReapManager` history
(``FunctionReapState.ws_history``): the recorded set of each record
generation plus the pages earlier predict invocations demand-faulted.
Pages in the prediction but not in the recorded WS file are read from
the snapshot memory file (readahead path) or installed as zero pages.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.context import LatencyBreakdown
from repro.core.files import ReapArtifacts
from repro.core.monitor import PrefetchMonitor, UffdMonitor
from repro.core.policies import ReapPolicy
from repro.memory.guest import ContentMode
from repro.memory.working_set import contiguous_runs
from repro.sim.engine import Event
from repro.sim.units import PAGE_SIZE
from repro.storage.device import ReadKind
from repro.vm.host import WorkerHost
from repro.vm.microvm import MicroVM
from repro.vm.snapshot import Snapshot


class _ObservingMonitor(PrefetchMonitor):
    """Prefetch monitor that also collects the demanded page set."""

    def __init__(self, *args: Any, sink: set[int], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._sink = sink

    def observe(self, page: int) -> None:
        self._sink.add(page)


class PredictPolicy(ReapPolicy):
    """REAP install extended with pages predicted from prior generations."""

    name = "predict"

    def __init__(self, host: WorkerHost, snapshot: Snapshot,
                 breakdown: LatencyBreakdown,
                 artifacts: Optional[ReapArtifacts] = None,
                 predicted_extra: tuple[int, ...] = ()) -> None:
        super().__init__(host, snapshot, breakdown, artifacts=artifacts)
        self.predicted_extra = tuple(predicted_extra)
        #: Pages demand-faulted during this invocation (feeds the next
        #: generation's prediction through the policy layer).
        self.demanded_pages: set[int] = set()
        #: Everything eagerly installed; the orchestrator's §7.1
        #: misprediction accounting uses this instead of the bare
        #: recorded set.
        self.prefetched_page_set: frozenset[int] = frozenset()

    def _make_monitor(self, vm: MicroVM) -> UffdMonitor:
        return _ObservingMonitor(
            self.host, self.uffd, vm.memory.backing_file, self.artifacts,
            name=f"{self.name}:{vm.name}", sink=self.demanded_pages,
            extra_fault_us=self.snapshot.profile.fault_cpu_us)

    def prepare(self, vm: MicroVM) -> Generator[Event, Any, None]:
        yield from super().prepare(vm)
        recorded = self.artifacts.page_set
        extra = [page for page in self.predicted_extra
                 if page not in recorded
                 and not vm.memory.is_present(page)]
        self.prefetched_page_set = recorded | frozenset(extra)
        if not extra:
            return
        env = self.host.env
        params = self.host.params
        memory_file = vm.memory.backing_file
        full_content = vm.memory.content_mode is ContentMode.FULL
        resident = [page for page in extra if memory_file.has_block(page)]
        fresh = [page for page in extra
                 if not memory_file.has_block(page)]
        started = env.now
        if resident:
            runs = contiguous_runs(resident)
            for run_start, run_length in runs:
                yield from self.host.page_cache.read(
                    memory_file, run_start * PAGE_SIZE,
                    run_length * PAGE_SIZE, kind=ReadKind.READAHEAD)
            yield env.timeout(self.host.install_batch_us(
                len(runs), len(resident) * PAGE_SIZE))
            if full_content:
                data = [memory_file.read_block(page) for page in resident]
            else:
                data = None
            self.uffd.copy_batch(resident, data)
        for page in fresh:
            yield env.timeout(params.uffd_zeropage_us)
            self.uffd.zeropage(page)
        self.breakdown.install_ws_us += env.now - started
        self.breakdown.prefetched_pages += len(extra)
        self.breakdown.extra["predicted_extra_pages"] = len(extra)
