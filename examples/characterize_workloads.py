"""§4-style characterization of serverless functions.

Reproduces the paper's three analysis angles on a subset of the
FunctionBench suite:

* memory footprints: booted instance vs snapshot-restore working set
  (Fig. 4),
* spatial contiguity of faulted guest pages (Fig. 3),
* cross-invocation page reuse under changing inputs (Fig. 5).

Run with::

    python examples/characterize_workloads.py [function ...]
"""

import sys

from repro.analysis.report import format_table
from repro.bench.harness import Testbed
from repro.functions import FunctionBehavior, get_profile
from repro.memory.working_set import (
    contiguous_runs,
    mean_run_length,
    reuse_between,
)


def characterize(name: str) -> dict:
    profile = get_profile(name)

    # Footprints: boot one instance, restore another from a snapshot.
    testbed = Testbed(seed=7)
    entry = testbed.run(
        testbed.orchestrator.deploy(profile, take_snapshot=False))
    boot_mb = entry.warm[0].vm.memory.resident_bytes / 1e6

    testbed = Testbed(seed=7)
    testbed.deploy(profile)
    testbed.invoke(name, mode="vanilla", keep_warm=True)
    restored = testbed.orchestrator.function(name).warm[0].vm
    restore_mb = restored.memory.resident_bytes / 1e6

    # Locality and reuse from the workload model directly.
    behavior = FunctionBehavior(profile, seed=7)
    first = behavior.trace_for(1).page_set
    second = behavior.trace_for(2).page_set
    reuse = reuse_between(first, second)

    return {
        "function": name,
        "boot_mb": round(boot_mb, 1),
        "restore_mb": round(restore_mb, 1),
        "reduction": f"{1 - restore_mb / boot_mb:.0%}",
        "runs": len(contiguous_runs(first)),
        "mean_run": round(mean_run_length(first), 2),
        "same_pages": f"{reuse.same_fraction:.1%}",
    }


def main() -> None:
    names = sys.argv[1:] or ["helloworld", "image_rotate", "cnn_serving"]
    rows = [characterize(name) for name in names]
    print(format_table(rows, title="Workload characterization (§4)"))
    print("\npaper: restore footprints are 3-39% of booted footprints;")
    print("runs of 2-3 pages defeat disk readahead; >=76-97% of pages")
    print("recur across invocations -- the properties REAP exploits.")


if __name__ == "__main__":
    main()
