"""Concurrent cold-start scalability (the Fig. 9 experiment as a script).

Launches N independent cold starts of ``helloworld`` simultaneously on
one worker, for N in 1..32, under both the baseline and REAP, and prints
the average per-instance latency.  The baseline grows near-linearly --
its lazy faults serialize on the snapshot storage path -- while REAP's
single large reads share the SSD's streaming bandwidth.

Run with::

    python examples/scalability_study.py
"""

from repro.analysis.report import format_table
from repro.bench.harness import Testbed
from repro.functions import get_profile


def run_level(mode: str, level: int) -> float:
    testbed = Testbed(seed=42)
    testbed.deploy(get_profile("helloworld"))
    if mode != "vanilla":
        testbed.invoke("helloworld")  # record
    testbed.host.flush_page_cache()
    latencies = []

    def one():
        result = yield from testbed.orchestrator.invoke(
            "helloworld", mode=mode, flush_page_cache=False, use_warm=False)
        latencies.append(result.latency_ms)

    env = testbed.env
    jobs = [env.process(one()) for _ in range(level)]
    env.run(until=env.all_of(jobs))
    return sum(latencies) / len(latencies)


def main() -> None:
    rows = []
    for level in (1, 2, 4, 8, 16, 32):
        base = run_level("vanilla", level)
        reap = run_level("reap", level)
        rows.append({
            "concurrency": level,
            "baseline_avg_ms": round(base, 1),
            "reap_avg_ms": round(reap, 1),
            "reap_advantage": f"{base / reap:.1f}x",
        })
    print(format_table(rows, title="Concurrent cold starts (Fig. 9)"))
    print("\npaper: baseline grows near-linearly with concurrency while")
    print("REAP stays low until it becomes disk-bandwidth-bound (~16).")


if __name__ == "__main__":
    main()
