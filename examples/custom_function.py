"""Bring your own workload: profiles, REAP, and the §7.2 fallback.

Defines two custom functions outside the FunctionBench catalog:

* ``thumbnailer`` -- a well-behaved image service whose working set
  recurs, so REAP accelerates it;
* ``chaotic`` -- a pathological function whose first invocation is not
  representative (´record_divergence=0.9``), demonstrating how the REAP
  manager detects mispredictions, re-records once, and finally falls
  back to vanilla snapshots (§7.2).

Run with::

    python examples/custom_function.py
"""

from repro.bench.harness import Testbed
from repro.core.manager import ReapParameters
from repro.functions import FunctionProfile


THUMBNAILER = FunctionProfile(
    name="thumbnailer",
    description="resize uploaded images to thumbnails",
    vm_memory_mb=128,
    boot_footprint_mb=96.0,
    warm_ms=18.0,
    connection_pages=900,
    processing_pages=2200,
    unique_pages=420,          # per-request image buffers
    unique_zero_fraction=0.8,
    contiguity_mean=2.5,
    input_mb=0.8,
)

CHAOTIC = FunctionProfile(
    name="chaotic",
    description="control flow depends heavily on the request",
    vm_memory_mb=64,
    boot_footprint_mb=32.0,
    warm_ms=10.0,
    connection_pages=400,
    processing_pages=1500,
    unique_pages=200,
    contiguity_mean=2.3,
    record_divergence=0.9,     # the recorded working set never recurs
)


def main() -> None:
    params = ReapParameters(mispredict_threshold=0.3,
                            mispredict_streak_limit=2, max_re_records=1)
    testbed = Testbed(seed=7, reap_params=params)
    testbed.deploy(THUMBNAILER)
    testbed.deploy(CHAOTIC)

    print("well-behaved function:")
    baseline = testbed.invoke("thumbnailer", mode="vanilla")
    testbed.invoke("thumbnailer")          # record
    reap = testbed.invoke("thumbnailer")
    print(f"  baseline {baseline.latency_ms:6.1f} ms -> "
          f"REAP {reap.latency_ms:6.1f} ms "
          f"({baseline.latency_ms / reap.latency_ms:.1f}x)")

    print("\npathological function (working set never recurs):")
    for step in range(8):
        result = testbed.invoke("chaotic")
        state = testbed.orchestrator.reap.state_for("chaotic")
        print(f"  invocation {step}: mode={result.mode:<8} "
              f"latency={result.latency_ms:7.1f} ms  "
              f"demand_faults={result.breakdown.demand_faults:5d}  "
              f"fallback={state.fallback_to_vanilla}")
    state = testbed.orchestrator.reap.state_for("chaotic")
    print(f"\nmanager history: {state.history}")
    print("the manager re-recorded once, kept mispredicting, and fell "
          "back to vanilla snapshots -- exactly the §7.2 escape hatch.")


if __name__ == "__main__":
    main()
