"""Full-suite REAP evaluation (the Fig. 8 experiment as a script).

For every FunctionBench function: baseline snapshot cold start, REAP
record, then REAP prefetch -- printing the same per-function speedups
and the geometric mean the paper reports.

Run with::

    python examples/reap_sweep.py
"""

from repro.analysis.aggregate import geometric_mean
from repro.analysis.report import format_table
from repro.bench import reference
from repro.bench.harness import Testbed
from repro.functions import FUNCTIONBENCH


def main() -> None:
    rows = []
    speedups = []
    for name, profile in FUNCTIONBENCH.items():
        testbed = Testbed(seed=42)
        testbed.deploy(profile)
        baseline = testbed.invoke(name, mode="vanilla")
        testbed.invoke(name)          # record phase
        reap = testbed.invoke(name)   # prefetch phase
        speedup = baseline.latency_ms / reap.latency_ms
        speedups.append(speedup)
        rows.append({
            "function": name,
            "baseline_ms": round(baseline.latency_ms, 0),
            "reap_ms": round(reap.latency_ms, 0),
            "speedup": round(speedup, 2),
            "paper_speedup": round(reference.FIG2_COLD_MS[name]
                                   / reference.FIG8_REAP_MS[name], 2),
        })
    print(format_table(rows, title="Baseline vs REAP cold starts (Fig. 8)"))
    print(f"\ngeometric-mean speedup: {geometric_mean(speedups):.2f}x "
          f"(paper: ~{reference.FIG8_SPEEDUP_GEOMEAN}x)")


if __name__ == "__main__":
    main()
