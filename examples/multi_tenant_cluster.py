"""A multi-worker serverless cluster with autoscaling and keep-alive.

Builds the full vHive-style stack: two workers (each with its own SSD,
containerd control plane, and REAP-enabled orchestrator) behind an
Istio-style load balancer, with Knative-style per-function autoscaling
and idle-instance reaping.  Three tenants share the cluster with
different traffic patterns; the script reports warm/cold hit rates and
how REAP changes the cold-start tail.

Run with::

    python examples/multi_tenant_cluster.py
"""

from repro.analysis.report import format_table
from repro.functions import get_profile
from repro.orchestrator import AutoscalerParameters, Cluster
from repro.sim import Environment, SEC
from repro.sim.rng import RandomStream


TENANTS = {
    # function        mean inter-arrival (s)
    "helloworld": 5.0,
    "pyaes": 20.0,
    "json_serdes": 60.0,
}


def main() -> None:
    env = Environment()
    cluster = Cluster(env, n_workers=2, seed=13,
                      autoscaler_params=AutoscalerParameters(
                          keepalive_s=120.0, scan_period_s=15.0))
    for name in TENANTS:
        env.run(until=env.process(cluster.deploy(get_profile(name))))

    stats = {name: {"cold": 0, "warm": 0, "cold_ms": [], "warm_ms": []}
             for name in TENANTS}
    rng = RandomStream(13, "traffic")

    def tenant_traffic(name: str, mean_gap_s: float):
        stream = rng.child(name)
        for _ in range(40):
            yield env.timeout(stream.expovariate(1.0 / mean_gap_s) * SEC)
            result = yield from cluster.invoke(name)
            bucket = "warm" if result.mode == "warm" else "cold"
            stats[name][bucket] += 1
            stats[name][f"{bucket}_ms"].append(result.latency_ms)

    jobs = [env.process(tenant_traffic(name, gap))
            for name, gap in TENANTS.items()]
    env.run(until=env.all_of(jobs))
    cluster.shutdown()

    rows = []
    for name, tally in stats.items():
        total = tally["cold"] + tally["warm"]
        rows.append({
            "function": name,
            "requests": total,
            "warm_rate": f"{tally['warm'] / total:.0%}",
            "avg_warm_ms": round(sum(tally["warm_ms"])
                                 / max(len(tally["warm_ms"]), 1), 1),
            "avg_cold_ms": round(sum(tally["cold_ms"])
                                 / max(len(tally["cold_ms"]), 1), 1),
        })
    print(format_table(rows, title="Multi-tenant cluster, 40 requests/tenant"))
    print("\ncold starts above ran through REAP after each function's")
    print("first (record) invocation; infrequently-invoked functions see")
    print("more cold starts -- exactly the population REAP targets (§7.2).")


if __name__ == "__main__":
    main()
