"""Quickstart: cold starts from snapshots, and what REAP does to them.

Deploys the paper's ``helloworld`` function on a simulated worker,
then invokes it four ways:

1. cold from a vanilla Firecracker-style snapshot (lazy paging),
2. cold in REAP *record* mode (first invocation, captures the trace),
3. cold in REAP *prefetch* mode (single O_DIRECT working-set read),
4. warm (memory-resident instance).

Run with::

    python examples/quickstart.py
"""

from repro.bench.harness import Testbed
from repro.functions import get_profile


def describe(result) -> str:
    parts = result.breakdown.component_ms()
    detail = ", ".join(f"{name}={value:.1f}ms"
                       for name, value in parts.items() if value > 0.05)
    return (f"{result.mode:>8}: {result.latency_ms:7.1f} ms   ({detail}; "
            f"{result.breakdown.demand_faults} demand faults)")


def main() -> None:
    testbed = Testbed(seed=42)
    profile = get_profile("helloworld")
    print(f"deploying {profile.name!r} "
          f"(working set {profile.working_set_mb:.1f} MB, "
          f"warm latency {profile.warm_ms:.0f} ms)\n")
    testbed.deploy(profile)

    vanilla = testbed.invoke("helloworld", mode="vanilla")
    record = testbed.invoke("helloworld")   # REAP manager picks "record"
    reap = testbed.invoke("helloworld")     # now "reap"
    testbed.invoke("helloworld", mode="vanilla", keep_warm=True)
    warm = testbed.invoke("helloworld")

    for result in (vanilla, record, reap, warm):
        print(describe(result))

    speedup = vanilla.latency_ms / reap.latency_ms
    print(f"\nREAP speeds up this cold start {speedup:.1f}x "
          f"(paper: 232 ms -> 60 ms, 3.9x)")
    print(f"faults eliminated: "
          f"{1 - reap.breakdown.demand_faults / vanilla.breakdown.demand_faults:.0%} "
          f"(paper: ~97% on average)")


if __name__ == "__main__":
    main()
